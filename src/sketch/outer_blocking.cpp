#include "sketch/outer_blocking.hpp"

#include <omp.h>

#include "sketch/kernel_jki.hpp"
#include "sketch/kernel_kji.hpp"

#include <algorithm>
#include <string>
#include <vector>

#include "dense/microkernel.hpp"
#include "perf/perf.hpp"
#include "perf/trace.hpp"
#include "sketch/schedule.hpp"
#include "support/aligned_buffer.hpp"
#include "support/env.hpp"
#include "support/parallel.hpp"
#include "support/run_control.hpp"
#include "support/timer.hpp"

namespace rsketch {

namespace {

/// Per-thread working state: a private sampler (the sampler is stateful) and
/// an aligned scratch vector v of b_d elements for the regenerated column.
/// Counters accumulate thread-locally and are merged after the join.
template <typename T>
struct ThreadCtx {
  explicit ThreadCtx(const SketchConfig& cfg)
      : sampler(cfg.seed, cfg.dist, cfg.backend, cfg.isa), v(cfg.block_d) {}
  SketchSampler<T> sampler;
  AlignedBuffer<T> v;
  AccumTimer sample_timer;
  perf::KernelCounters counters;
  /// Seconds this thread spent inside kernel calls; fed to
  /// perf::add_parallel_busy() after the join. Only accumulated when
  /// telemetry or tracing is on (one Timer pair per outer block).
  double busy_seconds = 0.0;
};

/// Optional busy-time bracket around one kernel call: charges the elapsed
/// wall time to the thread's busy total when tracking is on.
template <typename T>
struct BusyScope {
  BusyScope(ThreadCtx<T>& c, bool on) : ctx(on ? &c : nullptr) {}
  ~BusyScope() {
    if (ctx != nullptr) ctx->busy_seconds += t.seconds();
  }
  BusyScope(const BusyScope&) = delete;
  BusyScope& operator=(const BusyScope&) = delete;
  ThreadCtx<T>* ctx;
  Timer t;
};

/// First-touch zero of the output panel Â[i0 : i0+d1, j0 : j0+n1), done by
/// the thread about to accumulate into it so the pages land on its node.
/// Replaces the up-front set_zero(): output blocks are disjoint and every
/// (ib, jb) pair is executed exactly once, so coverage is identical. The
/// last row block extends to the padded leading dimension so a reused Â
/// keeps zero-initialized padding.
template <typename T>
void zero_panel(DenseMatrix<T>& a_hat, index_t i0, index_t d1, index_t j0,
                index_t n1) {
  const index_t top = i0 + d1 == a_hat.rows() ? a_hat.ld() : i0 + d1;
  for (index_t j = j0; j < j0 + n1; ++j) {
    T* c = a_hat.col(j) + i0;
    std::fill(c, c + (top - i0), T{0});
  }
}

template <typename T>
SketchStats collect(std::vector<ThreadCtx<T>>& ctxs, const char* region,
                    double total_seconds, index_t d, index_t nnz) {
  SketchStats stats;
  stats.total_seconds = total_seconds;
  for (auto& c : ctxs) {
    stats.samples_generated += c.sampler.samples_generated();
    stats.sample_seconds = std::max(stats.sample_seconds,
                                    c.sample_timer.seconds());
    stats.counters.merge(c.counters);
  }
  if (!ctxs.empty()) stats.isa = ctxs.front().sampler.isa();

  // Thread-busy split of the parallel region (only populated when the busy
  // brackets ran). Keyed by the enclosing span's name so the report merges
  // the imbalance fields into that span's entry.
  const int nt = static_cast<int>(ctxs.size());
  if (nt > 1) {
    std::vector<double> busy(static_cast<std::size_t>(nt));
    double total_busy = 0.0;
    double max_busy = 0.0;
    for (int t = 0; t < nt; ++t) {
      busy[static_cast<std::size_t>(t)] =
          ctxs[static_cast<std::size_t>(t)].busy_seconds;
      total_busy += busy[static_cast<std::size_t>(t)];
      max_busy = std::max(max_busy, busy[static_cast<std::size_t>(t)]);
    }
    if (total_busy > 0.0) {
      stats.threads_used = nt;
      const double mean = total_busy / static_cast<double>(nt);
      stats.thread_imbalance = mean > 0.0 ? max_busy / mean : 1.0;
      perf::add_parallel_busy(region, nt, busy.data());
    }
  }
  const double flops = 2.0 * static_cast<double>(d) * static_cast<double>(nnz);
  stats.gflops = total_seconds > 0 ? flops / total_seconds / 1e9 : 0.0;
  if (perf::enabled()) {
    perf::add(stats.counters);
    perf::add(perf::Counter::SketchCalls, 1);
    // The resolved tier, visible both as a count and as a per-tier span
    // ("kernel_dispatch/avx2"), so a report alone shows what ran.
    perf::add(perf::Counter::KernelDispatches, 1);
    perf::add_span(std::string("kernel_dispatch/") +
                       microkernel::to_string(stats.isa),
                   0.0);
    if (stats.sample_seconds > 0.0) {
      perf::add_span("sample_fill", stats.sample_seconds);
    }
  }
  if (perf::trace::armed()) {
    // Timeline marker of the resolved ISA tier, visible even in trace-only
    // runs (RSKETCH_TRACE without RSKETCH_PERF).
    perf::trace::instant(perf::trace::intern(
        std::string("kernel_dispatch/") + microkernel::to_string(stats.isa)));
  }
  return stats;
}

/// Post-join handling of a fired stop latch: count the cause into the perf
/// catalog, then surface it as run_stopped_error. OpenMP forbids throwing
/// across the parallel region, so the loop bodies only *skip* once the latch
/// fires and the throw happens here, on the joining thread.
void check_join(const CooperativeStop& stop, const char* where) {
  if (!stop.stopped()) return;
  switch (stop.cause()) {
    case StopCause::Cancelled:
      perf::add(perf::Counter::RunCancelled, 1);
      break;
    case StopCause::DeadlineExceeded:
      perf::add(perf::Counter::RunDeadlineHits, 1);
      break;
    case StopCause::BudgetExceeded:
      perf::add(perf::Counter::RunBudgetHits, 1);
      break;
    case StopCause::None:
      break;
  }
  stop.throw_if_stopped(where);
}

}  // namespace

template <typename T>
SketchStats sketch_blocked_kji(const SketchConfig& cfg, const CscMatrix<T>& a,
                               DenseMatrix<T>& a_hat, bool instrument,
                               const RunControl* run) {
  perf::Span span("sketch_blocked_kji");
  cfg.validate(a.rows(), a.cols());
  require(a_hat.rows() == cfg.d && a_hat.cols() == a.cols(),
          "sketch_blocked_kji: a_hat must be d x n");
  const index_t d = cfg.d;
  const index_t n = a.cols();
  const index_t bd = std::min(cfg.block_d, std::max<index_t>(d, 1));
  const index_t bn = std::min(cfg.block_n, std::max<index_t>(n, 1));
  const index_t n_iblocks = d == 0 ? 0 : ceil_div(d, bd);
  const index_t n_jblocks = n == 0 ? 0 : ceil_div(n, bn);

  const int nthreads =
      cfg.parallel == ParallelOver::Sequential ? 1 : omp_get_max_threads();
  std::vector<ThreadCtx<T>> ctxs;
  ctxs.reserve(static_cast<std::size_t>(nthreads));
  for (int t = 0; t < nthreads; ++t) ctxs.emplace_back(cfg);
  const bool count = instrument || perf::enabled();

  const bool track_busy =
      nthreads > 1 && (perf::enabled() || perf::trace::armed());
  CooperativeStop stop;

  // Static block-to-thread assignment (sketch/schedule.hpp). DBlocks items
  // are (jb, ib) pairs flattened jb-major; NBlocks items are whole column
  // slabs. Any assignment is bitwise-equivalent — blocks are disjoint and S
  // columns are seed-checkpointed — so this only moves work between threads.
  const bool per_pair = cfg.parallel != ParallelOver::NBlocks;
  const index_t n_items = per_pair ? n_iblocks * n_jblocks : n_jblocks;
  const BlockSchedule sched = build_block_schedule(
      resolve_schedule_mode(cfg.schedule), nthreads, n_items, [&] {
        return kji_item_costs(a, d, bd, bn, cfg.parallel,
                              schedule_rng_cost(cfg.dist, cfg.backend));
      });

  Timer timer;
#pragma omp parallel num_threads(nthreads) if (nthreads > 1)
  {
    trace_name_omp_thread();
    maybe_pin_omp_thread(nthreads);
    const int team = std::max(1, omp_get_num_threads());
    // Robust to a shrunk team: every per-thread list runs exactly once no
    // matter how many workers actually materialized.
    for (int t = omp_get_thread_num(); t < sched.threads(); t += team) {
      auto& ctx = ctxs[static_cast<std::size_t>(t)];
      const index_t begin = sched.offsets[static_cast<std::size_t>(t)];
      const index_t end = sched.offsets[static_cast<std::size_t>(t) + 1];
      for (index_t k = begin; k < end; ++k) {
        if (stop.should_skip(run)) break;
        const index_t item = sched.items[static_cast<std::size_t>(k)];
        const index_t jb = per_pair ? item / n_iblocks : item;
        const index_t j0 = jb * bn;
        const index_t n1 = std::min(bn, n - j0);
        if (per_pair) {
          const index_t i0 = (item % n_iblocks) * bd;
          const index_t d1 = std::min(bd, d - i0);
          BusyScope<T> busy(ctx, track_busy);
          zero_panel(a_hat, i0, d1, j0, n1);
          kernel_kji(a_hat, i0, d1, j0, n1, a, ctx.sampler, ctx.v.data(),
                     instrument ? &ctx.sample_timer : nullptr,
                     count ? &ctx.counters : nullptr);
        } else {
          for (index_t ib = 0; ib < n_iblocks; ++ib) {
            if (stop.should_skip(run)) break;
            const index_t i0 = ib * bd;
            const index_t d1 = std::min(bd, d - i0);
            BusyScope<T> busy(ctx, track_busy);
            zero_panel(a_hat, i0, d1, j0, n1);
            kernel_kji(a_hat, i0, d1, j0, n1, a, ctx.sampler, ctx.v.data(),
                       instrument ? &ctx.sample_timer : nullptr,
                       count ? &ctx.counters : nullptr);
          }
        }
      }
    }
  }
  check_join(stop, "sketch_blocked_kji");
  SketchStats stats =
      collect(ctxs, "sketch_blocked_kji", timer.seconds(), d, a.nnz());
  stats.schedule_imbalance_est = sched.imbalance_est;
  return stats;
}

template <typename T>
SketchStats sketch_blocked_jki(const SketchConfig& cfg, const BlockedCsr<T>& ab,
                               DenseMatrix<T>& a_hat, bool instrument,
                               const RunControl* run) {
  perf::Span span("sketch_blocked_jki");
  cfg.validate(ab.rows(), ab.cols());
  require(a_hat.rows() == cfg.d && a_hat.cols() == ab.cols(),
          "sketch_blocked_jki: a_hat must be d x n");
  const index_t d = cfg.d;
  const index_t bd = std::min(cfg.block_d, std::max<index_t>(d, 1));
  const index_t n_iblocks = d == 0 ? 0 : ceil_div(d, bd);
  const index_t n_jblocks = ab.num_blocks();

  const int nthreads =
      cfg.parallel == ParallelOver::Sequential ? 1 : omp_get_max_threads();
  std::vector<ThreadCtx<T>> ctxs;
  ctxs.reserve(static_cast<std::size_t>(nthreads));
  for (int t = 0; t < nthreads; ++t) ctxs.emplace_back(cfg);
  const bool count = instrument || perf::enabled();

  const bool track_busy =
      nthreads > 1 && (perf::enabled() || perf::trace::armed());
  CooperativeStop stop;

  // Same scheduled walk as the kji kernel; per-block cost comes from the
  // BlockedCsr structure metadata (nnz / nonempty rows per vertical block),
  // which is exactly where the skewed workloads concentrate their work.
  const bool per_pair = cfg.parallel != ParallelOver::NBlocks;
  const index_t n_items = per_pair ? n_iblocks * n_jblocks : n_jblocks;
  const BlockSchedule sched = build_block_schedule(
      resolve_schedule_mode(cfg.schedule), nthreads, n_items, [&] {
        return jki_item_costs(ab, d, bd, cfg.parallel,
                              schedule_rng_cost(cfg.dist, cfg.backend));
      });

  Timer timer;
#pragma omp parallel num_threads(nthreads) if (nthreads > 1)
  {
    trace_name_omp_thread();
    maybe_pin_omp_thread(nthreads);
    const int team = std::max(1, omp_get_num_threads());
    for (int t = omp_get_thread_num(); t < sched.threads(); t += team) {
      auto& ctx = ctxs[static_cast<std::size_t>(t)];
      const index_t begin = sched.offsets[static_cast<std::size_t>(t)];
      const index_t end = sched.offsets[static_cast<std::size_t>(t) + 1];
      for (index_t k = begin; k < end; ++k) {
        if (stop.should_skip(run)) break;
        const index_t item = sched.items[static_cast<std::size_t>(k)];
        const index_t jb = per_pair ? item / n_iblocks : item;
        const auto& blk = ab.block(jb);
        const index_t n1 = blk.csr.cols();
        if (per_pair) {
          const index_t i0 = (item % n_iblocks) * bd;
          const index_t d1 = std::min(bd, d - i0);
          BusyScope<T> busy(ctx, track_busy);
          zero_panel(a_hat, i0, d1, blk.col0, n1);
          kernel_jki(a_hat, i0, d1, blk, ctx.sampler, ctx.v.data(),
                     instrument ? &ctx.sample_timer : nullptr,
                     count ? &ctx.counters : nullptr);
        } else {
          for (index_t ib = 0; ib < n_iblocks; ++ib) {
            if (stop.should_skip(run)) break;
            const index_t i0 = ib * bd;
            const index_t d1 = std::min(bd, d - i0);
            BusyScope<T> busy(ctx, track_busy);
            zero_panel(a_hat, i0, d1, blk.col0, n1);
            kernel_jki(a_hat, i0, d1, blk, ctx.sampler, ctx.v.data(),
                       instrument ? &ctx.sample_timer : nullptr,
                       count ? &ctx.counters : nullptr);
          }
        }
      }
    }
  }
  check_join(stop, "sketch_blocked_jki");
  SketchStats stats =
      collect(ctxs, "sketch_blocked_jki", timer.seconds(), d, ab.nnz());
  stats.schedule_imbalance_est = sched.imbalance_est;
  return stats;
}

template SketchStats sketch_blocked_kji<float>(const SketchConfig&,
                                               const CscMatrix<float>&,
                                               DenseMatrix<float>&, bool,
                                               const RunControl*);
template SketchStats sketch_blocked_kji<double>(const SketchConfig&,
                                                const CscMatrix<double>&,
                                                DenseMatrix<double>&, bool,
                                                const RunControl*);
template SketchStats sketch_blocked_jki<float>(const SketchConfig&,
                                               const BlockedCsr<float>&,
                                               DenseMatrix<float>&, bool,
                                               const RunControl*);
template SketchStats sketch_blocked_jki<double>(const SketchConfig&,
                                                const BlockedCsr<double>&,
                                                DenseMatrix<double>&, bool,
                                                const RunControl*);

}  // namespace rsketch
