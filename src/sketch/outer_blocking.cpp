#include "sketch/outer_blocking.hpp"

#include <omp.h>

#include "sketch/kernel_jki.hpp"
#include "sketch/kernel_kji.hpp"

#include <algorithm>
#include <string>
#include <vector>

#include "dense/microkernel.hpp"
#include "perf/perf.hpp"
#include "support/aligned_buffer.hpp"
#include "support/timer.hpp"

namespace rsketch {

namespace {

/// Per-thread working state: a private sampler (the sampler is stateful) and
/// an aligned scratch vector v of b_d elements for the regenerated column.
/// Counters accumulate thread-locally and are merged after the join.
template <typename T>
struct ThreadCtx {
  explicit ThreadCtx(const SketchConfig& cfg)
      : sampler(cfg.seed, cfg.dist, cfg.backend, cfg.isa), v(cfg.block_d) {}
  SketchSampler<T> sampler;
  AlignedBuffer<T> v;
  AccumTimer sample_timer;
  perf::KernelCounters counters;
};

template <typename T>
SketchStats collect(std::vector<ThreadCtx<T>>& ctxs, double total_seconds,
                    index_t d, index_t nnz) {
  SketchStats stats;
  stats.total_seconds = total_seconds;
  for (auto& c : ctxs) {
    stats.samples_generated += c.sampler.samples_generated();
    stats.sample_seconds = std::max(stats.sample_seconds,
                                    c.sample_timer.seconds());
    stats.counters.merge(c.counters);
  }
  if (!ctxs.empty()) stats.isa = ctxs.front().sampler.isa();
  const double flops = 2.0 * static_cast<double>(d) * static_cast<double>(nnz);
  stats.gflops = total_seconds > 0 ? flops / total_seconds / 1e9 : 0.0;
  if (perf::enabled()) {
    perf::add(stats.counters);
    perf::add(perf::Counter::SketchCalls, 1);
    // The resolved tier, visible both as a count and as a per-tier span
    // ("kernel_dispatch/avx2"), so a report alone shows what ran.
    perf::add(perf::Counter::KernelDispatches, 1);
    perf::add_span(std::string("kernel_dispatch/") +
                       microkernel::to_string(stats.isa),
                   0.0);
    if (stats.sample_seconds > 0.0) {
      perf::add_span("sample_fill", stats.sample_seconds);
    }
  }
  return stats;
}

}  // namespace

template <typename T>
SketchStats sketch_blocked_kji(const SketchConfig& cfg, const CscMatrix<T>& a,
                               DenseMatrix<T>& a_hat, bool instrument) {
  perf::Span span("sketch_blocked_kji");
  cfg.validate(a.rows(), a.cols());
  require(a_hat.rows() == cfg.d && a_hat.cols() == a.cols(),
          "sketch_blocked_kji: a_hat must be d x n");
  const index_t d = cfg.d;
  const index_t n = a.cols();
  const index_t bd = std::min(cfg.block_d, std::max<index_t>(d, 1));
  const index_t bn = std::min(cfg.block_n, std::max<index_t>(n, 1));
  const index_t n_iblocks = d == 0 ? 0 : ceil_div(d, bd);
  const index_t n_jblocks = n == 0 ? 0 : ceil_div(n, bn);

  a_hat.set_zero();
  const int nthreads =
      cfg.parallel == ParallelOver::Sequential ? 1 : omp_get_max_threads();
  std::vector<ThreadCtx<T>> ctxs;
  ctxs.reserve(static_cast<std::size_t>(nthreads));
  for (int t = 0; t < nthreads; ++t) ctxs.emplace_back(cfg);
  const bool count = instrument || perf::enabled();

  Timer timer;
  if (cfg.parallel == ParallelOver::NBlocks) {
    // Threads own disjoint column panels of Â; no synchronization needed.
#pragma omp parallel for schedule(dynamic) num_threads(nthreads)
    for (index_t jb = 0; jb < n_jblocks; ++jb) {
      auto& ctx = ctxs[static_cast<std::size_t>(omp_get_thread_num())];
      const index_t j0 = jb * bn;
      const index_t n1 = std::min(bn, n - j0);
      for (index_t ib = 0; ib < n_iblocks; ++ib) {
        const index_t i0 = ib * bd;
        const index_t d1 = std::min(bd, d - i0);
        kernel_kji(a_hat, i0, d1, j0, n1, a, ctx.sampler, ctx.v.data(),
                   instrument ? &ctx.sample_timer : nullptr,
                   count ? &ctx.counters : nullptr);
      }
    }
  } else {
    // Algorithm 1 loop order: columns outermost (cache the sparse data and
    // the active column panel of Â), row blocks inner. Threads split the
    // inner d-loop — disjoint row panels of Â.
#pragma omp parallel num_threads(nthreads) if (nthreads > 1)
    {
      auto& ctx = ctxs[static_cast<std::size_t>(omp_get_thread_num())];
      for (index_t jb = 0; jb < n_jblocks; ++jb) {
        const index_t j0 = jb * bn;
        const index_t n1 = std::min(bn, n - j0);
#pragma omp for schedule(static) nowait
        for (index_t ib = 0; ib < n_iblocks; ++ib) {
          const index_t i0 = ib * bd;
          const index_t d1 = std::min(bd, d - i0);
          kernel_kji(a_hat, i0, d1, j0, n1, a, ctx.sampler, ctx.v.data(),
                     instrument ? &ctx.sample_timer : nullptr,
                     count ? &ctx.counters : nullptr);
        }
      }
    }
  }
  return collect(ctxs, timer.seconds(), d, a.nnz());
}

template <typename T>
SketchStats sketch_blocked_jki(const SketchConfig& cfg, const BlockedCsr<T>& ab,
                               DenseMatrix<T>& a_hat, bool instrument) {
  perf::Span span("sketch_blocked_jki");
  cfg.validate(ab.rows(), ab.cols());
  require(a_hat.rows() == cfg.d && a_hat.cols() == ab.cols(),
          "sketch_blocked_jki: a_hat must be d x n");
  const index_t d = cfg.d;
  const index_t bd = std::min(cfg.block_d, std::max<index_t>(d, 1));
  const index_t n_iblocks = d == 0 ? 0 : ceil_div(d, bd);
  const index_t n_jblocks = ab.num_blocks();

  a_hat.set_zero();
  const int nthreads =
      cfg.parallel == ParallelOver::Sequential ? 1 : omp_get_max_threads();
  std::vector<ThreadCtx<T>> ctxs;
  ctxs.reserve(static_cast<std::size_t>(nthreads));
  for (int t = 0; t < nthreads; ++t) ctxs.emplace_back(cfg);
  const bool count = instrument || perf::enabled();

  Timer timer;
  if (cfg.parallel == ParallelOver::NBlocks) {
    // Each vertical block updates only its own column slab of Â.
#pragma omp parallel for schedule(dynamic) num_threads(nthreads)
    for (index_t jb = 0; jb < n_jblocks; ++jb) {
      auto& ctx = ctxs[static_cast<std::size_t>(omp_get_thread_num())];
      for (index_t ib = 0; ib < n_iblocks; ++ib) {
        const index_t i0 = ib * bd;
        const index_t d1 = std::min(bd, d - i0);
        kernel_jki(a_hat, i0, d1, ab.block(jb), ctx.sampler, ctx.v.data(),
                   instrument ? &ctx.sample_timer : nullptr,
                   count ? &ctx.counters : nullptr);
      }
    }
  } else {
#pragma omp parallel num_threads(nthreads) if (nthreads > 1)
    {
      auto& ctx = ctxs[static_cast<std::size_t>(omp_get_thread_num())];
      for (index_t jb = 0; jb < n_jblocks; ++jb) {
        // dynamic, not static: within one vertical block every i-block costs
        // the same, but across blocks nnz can be wildly skewed, and with
        // nowait threads flow across the jb boundary — dynamic chunks keep a
        // thread that finished a sparse block from idling behind one stuck
        // in a dense block (bench/table7_parallel_scaling's skewed case).
#pragma omp for schedule(dynamic) nowait
        for (index_t ib = 0; ib < n_iblocks; ++ib) {
          const index_t i0 = ib * bd;
          const index_t d1 = std::min(bd, d - i0);
          kernel_jki(a_hat, i0, d1, ab.block(jb), ctx.sampler, ctx.v.data(),
                     instrument ? &ctx.sample_timer : nullptr,
                     count ? &ctx.counters : nullptr);
        }
      }
    }
  }
  return collect(ctxs, timer.seconds(), d, ab.nnz());
}

template SketchStats sketch_blocked_kji<float>(const SketchConfig&,
                                               const CscMatrix<float>&,
                                               DenseMatrix<float>&, bool);
template SketchStats sketch_blocked_kji<double>(const SketchConfig&,
                                                const CscMatrix<double>&,
                                                DenseMatrix<double>&, bool);
template SketchStats sketch_blocked_jki<float>(const SketchConfig&,
                                               const BlockedCsr<float>&,
                                               DenseMatrix<float>&, bool);
template SketchStats sketch_blocked_jki<double>(const SketchConfig&,
                                                const BlockedCsr<double>&,
                                                DenseMatrix<double>&, bool);

}  // namespace rsketch
