#include "sketch/kernel_kji.hpp"

#include "dense/blas1.hpp"

namespace rsketch {

template <typename T>
void kernel_kji(DenseMatrix<T>& a_hat, index_t i0, index_t d1, index_t j0,
                index_t n1, const CscMatrix<T>& a, SketchSampler<T>& sampler,
                T* v, AccumTimer* sample_timer) {
  const auto& col_ptr = a.col_ptr();
  const auto& row_idx = a.row_idx();
  const auto& values = a.values();

  for (index_t k = j0; k < j0 + n1; ++k) {
    T* __restrict out = a_hat.col(k) + i0;
    const index_t lo = col_ptr[static_cast<std::size_t>(k)];
    const index_t hi = col_ptr[static_cast<std::size_t>(k) + 1];
    for (index_t p = lo; p < hi; ++p) {
      const index_t j = row_idx[static_cast<std::size_t>(p)];
      const T ajk = values[static_cast<std::size_t>(p)];
      // v := S[i0 : i0+d1, j] — regenerated, never read from memory.
      if (sample_timer != nullptr) {
        sample_timer->start();
        sampler.fill(i0, j, v, d1);
        sample_timer->stop();
      } else {
        sampler.fill(i0, j, v, d1);
      }
      axpy(d1, ajk, v, out);
    }
  }
}

template void kernel_kji<float>(DenseMatrix<float>&, index_t, index_t, index_t,
                                index_t, const CscMatrix<float>&,
                                SketchSampler<float>&, float*, AccumTimer*);
template void kernel_kji<double>(DenseMatrix<double>&, index_t, index_t,
                                 index_t, index_t, const CscMatrix<double>&,
                                 SketchSampler<double>&, double*, AccumTimer*);

}  // namespace rsketch
