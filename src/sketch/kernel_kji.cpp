#include "sketch/kernel_kji.hpp"

#include "dense/microkernel.hpp"
#include "perf/trace.hpp"

namespace rsketch {

template <typename T>
void kernel_kji(DenseMatrix<T>& a_hat, index_t i0, index_t d1, index_t j0,
                index_t n1, const CscMatrix<T>& a, SketchSampler<T>& sampler,
                T* v, AccumTimer* sample_timer,
                perf::KernelCounters* counters) {
  // One trace slice per outer (i-block, j-block) pair — coarse enough that
  // tracing never intrudes on the nonzero loop below.
  static const std::uint32_t trace_id = perf::trace::intern("kernel_kji/block");
  perf::trace::Scope trace_scope(trace_id);
  const auto& col_ptr = a.col_ptr();
  const auto& row_idx = a.row_idx();
  const auto& values = a.values();
  const microkernel::Ops<T>& mk = sampler.mk();
  // Fused generate-and-axpy: batched xoshiro lanes stream straight into the
  // update, never touching the v buffer. Instrumented runs keep the buffered
  // two-phase path so sample_seconds still isolates RNG time (Table III);
  // both paths are bitwise identical by construction.
  const bool fused = sample_timer == nullptr && sampler.fused_eligible();

  for (index_t k = j0; k < j0 + n1; ++k) {
    T* __restrict out = a_hat.col(k) + i0;
    const index_t lo = col_ptr[static_cast<std::size_t>(k)];
    const index_t hi = col_ptr[static_cast<std::size_t>(k) + 1];
    for (index_t p = lo; p < hi; ++p) {
      const index_t j = row_idx[static_cast<std::size_t>(p)];
      const T ajk = values[static_cast<std::size_t>(p)];
      // v := S[i0 : i0+d1, j] — regenerated, never read from memory.
      if (fused) {
        sampler.fused_axpy(i0, j, ajk, out, d1);
      } else if (sample_timer != nullptr) {
        sample_timer->start();
        sampler.fill(i0, j, v, d1);
        sample_timer->stop();
        mk.axpy(d1, ajk, v, out);
      } else {
        sampler.fill(i0, j, v, d1);
        mk.axpy(d1, ajk, v, out);
      }
    }
  }

  if (counters != nullptr) {
    // Exact per-block accounting from the CSC structure alone — the nonzero
    // loop above carries no counter updates. Per nonzero: one value + one
    // row index of A read, d1 elements of Â read and written (axpy), d1
    // entries of S regenerated.
    const std::uint64_t nnz = static_cast<std::uint64_t>(
        col_ptr[static_cast<std::size_t>(j0 + n1)] -
        col_ptr[static_cast<std::size_t>(j0)]);
    const std::uint64_t du = static_cast<std::uint64_t>(d1);
    counters->rng_samples += nnz * du;
    counters->nnz_processed += nnz;
    counters->flops += 2 * nnz * du;
    counters->elems_moved += nnz * (2 * du + 1);
    counters->bytes_moved +=
        nnz * (2 * du * sizeof(T) + sizeof(T) + sizeof(index_t));
    counters->bytes_generated += nnz * du * sizeof(T);
    counters->kernel_blocks += 1;
  }
}

template void kernel_kji<float>(DenseMatrix<float>&, index_t, index_t, index_t,
                                index_t, const CscMatrix<float>&,
                                SketchSampler<float>&, float*, AccumTimer*,
                                perf::KernelCounters*);
template void kernel_kji<double>(DenseMatrix<double>&, index_t, index_t,
                                 index_t, index_t, const CscMatrix<double>&,
                                 SketchSampler<double>&, double*, AccumTimer*,
                                 perf::KernelCounters*);

}  // namespace rsketch
