#include "sketch/streaming.hpp"

#include <algorithm>
#include <vector>

#include "dense/blas1.hpp"
#include "perf/perf.hpp"
#include "sketch/sketch.hpp"
#include "sparse/validate.hpp"
#include "support/run_control.hpp"
#include "support/timer.hpp"

namespace rsketch {

namespace {

/// Per-row stop check: count the cause into the perf catalog and throw.
void poll_counted(const RunControl* run) {
  const StopCause c = run->stop_cause();
  if (c == StopCause::None) return;
  switch (c) {
    case StopCause::Cancelled:
      perf::add(perf::Counter::RunCancelled, 1);
      break;
    case StopCause::DeadlineExceeded:
      perf::add(perf::Counter::RunDeadlineHits, 1);
      break;
    case StopCause::BudgetExceeded:
      perf::add(perf::Counter::RunBudgetHits, 1);
      break;
    case StopCause::None:
      break;
  }
  throw run_stopped_error(c, "streaming_sketch: run stopped between rows (" +
                                 to_string(c) + ")");
}

}  // namespace

template <typename T>
SketchStats streaming_sketch(const SketchConfig& cfg, const CsrMatrix<T>& a,
                             DenseMatrix<T>& a_hat) {
  perf::Span span("streaming_sketch");
  cfg.validate(a.rows(), a.cols());
  if (cfg.check_inputs) {
    perf::Span vspan("validate_inputs");
    require_valid(a);
  }
  ResolvedRunControl rrc(cfg.control, cfg.deadline_ms,
                         cfg.workspace_budget_bytes);
  RunControl* const run = rrc.get();

  // Armed runs stage into a private buffer (clean-throw: a_hat is untouched
  // if a bound fires mid-stream); the unarmed path writes in place as ever.
  DenseMatrix<T> staging;
  DenseMatrix<T>* out = &a_hat;
  if (run != nullptr) {
    run->poll();
    staging.reset(cfg.d, a.cols());
    out = &staging;
  } else if (a_hat.rows() != cfg.d || a_hat.cols() != a.cols()) {
    a_hat.reset(cfg.d, a.cols());
  } else {
    a_hat.set_zero();
  }
  const index_t d = cfg.d;
  const index_t bd = std::min(cfg.block_d, std::max<index_t>(d, 1));
  SketchSampler<T> sampler(cfg.seed, cfg.dist, cfg.backend);
  // The d-long column scratch is std::vector-backed, so the AlignedBuffer
  // budget hook never sees it — reserve it explicitly. This is the floor of
  // the degradation ladder: if even this does not fit, the charge throws
  // BudgetExceeded.
  ScopedCharge scratch_charge(run, run != nullptr && run->budget_armed()
                                       ? static_cast<std::size_t>(d) * sizeof(T)
                                       : 0);
  std::vector<T> v(static_cast<std::size_t>(d));

  Timer timer;
  for (index_t j = 0; j < a.rows(); ++j) {
    if (run != nullptr) poll_counted(run);
    const index_t lo = a.row_ptr()[static_cast<std::size_t>(j)];
    const index_t hi = a.row_ptr()[static_cast<std::size_t>(j) + 1];
    if (lo == hi) continue;
    // Generate the full column S[:, j] in b_d-sized checkpointed chunks so
    // the values match the blocked kernels bit-for-bit.
    for (index_t i0 = 0; i0 < d; i0 += bd) {
      sampler.fill(i0, j, v.data() + i0, std::min(bd, d - i0));
    }
    for (index_t p = lo; p < hi; ++p) {
      const index_t k = a.col_idx()[static_cast<std::size_t>(p)];
      axpy(d, a.values()[static_cast<std::size_t>(p)], v.data(), out->col(k));
    }
  }

  SketchStats stats;
  stats.total_seconds = timer.seconds();
  stats.samples_generated = sampler.samples_generated();
  const double flops = 2.0 * static_cast<double>(d) * static_cast<double>(a.nnz());
  stats.gflops = stats.total_seconds > 0 ? flops / stats.total_seconds / 1e9 : 0.0;

  if (perf::enabled()) {
    // Same accounting as kernel_jki, over the whole matrix in one pass: one
    // full column of S per nonempty row, 2·d elements of Â per nonzero.
    std::uint64_t nonempty_rows = 0;
    for (index_t j = 0; j < a.rows(); ++j) {
      nonempty_rows += a.row_ptr()[static_cast<std::size_t>(j) + 1] >
                               a.row_ptr()[static_cast<std::size_t>(j)]
                           ? 1u
                           : 0u;
    }
    const std::uint64_t nnz = static_cast<std::uint64_t>(a.nnz());
    const std::uint64_t du = static_cast<std::uint64_t>(d);
    auto& c = stats.counters;
    c.rng_samples = nonempty_rows * du;
    c.nnz_processed = nnz;
    c.flops = 2 * nnz * du;
    c.elems_moved = nnz * (2 * du + 1);
    c.bytes_moved = nnz * (2 * du * sizeof(T) + sizeof(T) + sizeof(index_t)) +
                    (static_cast<std::uint64_t>(a.rows()) + 1) * sizeof(index_t);
    c.bytes_generated = nonempty_rows * du * sizeof(T);
    c.kernel_blocks = 1;
    perf::add(c);
    perf::add(perf::Counter::SketchCalls, 1);
  }

  const T scale = sketch_post_scale<T>(cfg);
  if (scale != T{1}) {
    for (index_t k = 0; k < out->cols(); ++k) {
      scal(out->rows(), scale, out->col(k));
    }
  }
  if (run != nullptr) {
    poll_counted(run);
    a_hat = std::move(staging);
  }
  return stats;
}

template SketchStats streaming_sketch<float>(const SketchConfig&,
                                             const CsrMatrix<float>&,
                                             DenseMatrix<float>&);
template SketchStats streaming_sketch<double>(const SketchConfig&,
                                              const CsrMatrix<double>&,
                                              DenseMatrix<double>&);

}  // namespace rsketch
