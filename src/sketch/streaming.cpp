#include "sketch/streaming.hpp"

#include <algorithm>
#include <vector>

#include "dense/blas1.hpp"
#include "perf/perf.hpp"
#include "sketch/sketch.hpp"
#include "support/timer.hpp"

namespace rsketch {

template <typename T>
SketchStats streaming_sketch(const SketchConfig& cfg, const CsrMatrix<T>& a,
                             DenseMatrix<T>& a_hat) {
  perf::Span span("streaming_sketch");
  cfg.validate(a.rows(), a.cols());
  if (a_hat.rows() != cfg.d || a_hat.cols() != a.cols()) {
    a_hat.reset(cfg.d, a.cols());
  } else {
    a_hat.set_zero();
  }
  const index_t d = cfg.d;
  const index_t bd = std::min(cfg.block_d, std::max<index_t>(d, 1));
  SketchSampler<T> sampler(cfg.seed, cfg.dist, cfg.backend);
  std::vector<T> v(static_cast<std::size_t>(d));

  Timer timer;
  for (index_t j = 0; j < a.rows(); ++j) {
    const index_t lo = a.row_ptr()[static_cast<std::size_t>(j)];
    const index_t hi = a.row_ptr()[static_cast<std::size_t>(j) + 1];
    if (lo == hi) continue;
    // Generate the full column S[:, j] in b_d-sized checkpointed chunks so
    // the values match the blocked kernels bit-for-bit.
    for (index_t i0 = 0; i0 < d; i0 += bd) {
      sampler.fill(i0, j, v.data() + i0, std::min(bd, d - i0));
    }
    for (index_t p = lo; p < hi; ++p) {
      const index_t k = a.col_idx()[static_cast<std::size_t>(p)];
      axpy(d, a.values()[static_cast<std::size_t>(p)], v.data(), a_hat.col(k));
    }
  }

  SketchStats stats;
  stats.total_seconds = timer.seconds();
  stats.samples_generated = sampler.samples_generated();
  const double flops = 2.0 * static_cast<double>(d) * static_cast<double>(a.nnz());
  stats.gflops = stats.total_seconds > 0 ? flops / stats.total_seconds / 1e9 : 0.0;

  if (perf::enabled()) {
    // Same accounting as kernel_jki, over the whole matrix in one pass: one
    // full column of S per nonempty row, 2·d elements of Â per nonzero.
    std::uint64_t nonempty_rows = 0;
    for (index_t j = 0; j < a.rows(); ++j) {
      nonempty_rows += a.row_ptr()[static_cast<std::size_t>(j) + 1] >
                               a.row_ptr()[static_cast<std::size_t>(j)]
                           ? 1u
                           : 0u;
    }
    const std::uint64_t nnz = static_cast<std::uint64_t>(a.nnz());
    const std::uint64_t du = static_cast<std::uint64_t>(d);
    auto& c = stats.counters;
    c.rng_samples = nonempty_rows * du;
    c.nnz_processed = nnz;
    c.flops = 2 * nnz * du;
    c.elems_moved = nnz * (2 * du + 1);
    c.bytes_moved = nnz * (2 * du * sizeof(T) + sizeof(T) + sizeof(index_t)) +
                    (static_cast<std::uint64_t>(a.rows()) + 1) * sizeof(index_t);
    c.bytes_generated = nonempty_rows * du * sizeof(T);
    c.kernel_blocks = 1;
    perf::add(c);
    perf::add(perf::Counter::SketchCalls, 1);
  }

  const T scale = sketch_post_scale<T>(cfg);
  if (scale != T{1}) {
    for (index_t k = 0; k < a_hat.cols(); ++k) {
      scal(a_hat.rows(), scale, a_hat.col(k));
    }
  }
  return stats;
}

template SketchStats streaming_sketch<float>(const SketchConfig&,
                                             const CsrMatrix<float>&,
                                             DenseMatrix<float>&);
template SketchStats streaming_sketch<double>(const SketchConfig&,
                                              const CsrMatrix<double>&,
                                              DenseMatrix<double>&);

}  // namespace rsketch
