// The memory-efficient but cache-unfriendly prior approach the paper
// contrasts against (§II-A): pylspack-style (1, m, 1)-blocking that
// generates one column of S at a time and applies it as a rank-1 update to
// the ENTIRE output Â (Sobczyk & Gallopoulos, 2022).
#pragma once

#include "dense/dense_matrix.hpp"
#include "sketch/config.hpp"
#include "sparse/csr.hpp"

namespace rsketch {

/// Compute Â = S·A with (1, m, 1)-blocking. A must be given in CSR (the
/// streaming loop needs row access). Only cfg.d / seed / dist / backend are
/// honoured — there are no blocks to size, which is precisely this
/// approach's weakness: every rank-1 update touches all d×n of Â.
template <typename T>
SketchStats streaming_sketch(const SketchConfig& cfg, const CsrMatrix<T>& a,
                             DenseMatrix<T>& a_hat);

extern template SketchStats streaming_sketch<float>(const SketchConfig&,
                                                    const CsrMatrix<float>&,
                                                    DenseMatrix<float>&);
extern template SketchStats streaming_sketch<double>(const SketchConfig&,
                                                     const CsrMatrix<double>&,
                                                     DenseMatrix<double>&);

}  // namespace rsketch
