// Algorithm 1 of the paper: the (⌈d/b_d⌉, 1, ⌈n/b_n⌉) outer blocking loop
// that drives a compute kernel over block pairs, with OpenMP parallelism
// over either outer loop (§II-C).
#pragma once

#include "dense/dense_matrix.hpp"
#include "sketch/config.hpp"
#include "sparse/blocked_csr.hpp"
#include "sparse/csc.hpp"

namespace rsketch {

/// Run Algorithm 1 with the kji kernel (Algorithm 3). `a_hat` must be
/// pre-sized to d × n and is overwritten. When `instrument` is true the
/// returned stats include sample_seconds (adds timer overhead, as the paper
/// notes for Tables III/V). A non-null `run` is polled between (b_d, b_n)
/// block pairs (one relaxed load per block; one predictable branch when
/// null) and the call throws run_stopped_error after the parallel region
/// joins if any bound fired — a_hat's contents are then unspecified, which
/// is why sketch_into() stages into a private buffer when a control is
/// armed.
template <typename T>
SketchStats sketch_blocked_kji(const SketchConfig& cfg, const CscMatrix<T>& a,
                               DenseMatrix<T>& a_hat, bool instrument = false,
                               const RunControl* run = nullptr);

/// Run Algorithm 1 with the jki kernel (Algorithm 4) over a pre-built
/// blocked-CSR matrix. The vertical block width of `ab` plays the role of
/// b_n; cfg.block_n is ignored here. Run control as in sketch_blocked_kji.
template <typename T>
SketchStats sketch_blocked_jki(const SketchConfig& cfg, const BlockedCsr<T>& ab,
                               DenseMatrix<T>& a_hat, bool instrument = false,
                               const RunControl* run = nullptr);

extern template SketchStats sketch_blocked_kji<float>(const SketchConfig&,
                                                      const CscMatrix<float>&,
                                                      DenseMatrix<float>&,
                                                      bool,
                                                      const RunControl*);
extern template SketchStats sketch_blocked_kji<double>(
    const SketchConfig&, const CscMatrix<double>&, DenseMatrix<double>&, bool,
    const RunControl*);
extern template SketchStats sketch_blocked_jki<float>(const SketchConfig&,
                                                      const BlockedCsr<float>&,
                                                      DenseMatrix<float>&,
                                                      bool,
                                                      const RunControl*);
extern template SketchStats sketch_blocked_jki<double>(
    const SketchConfig&, const BlockedCsr<double>&, DenseMatrix<double>&,
    bool, const RunControl*);

}  // namespace rsketch
