// Public entry points for computing Â = S·A with on-the-fly generation of S.
// This is the library's primary API; see README.md for a walkthrough.
#pragma once

#include "dense/dense_matrix.hpp"
#include "sketch/config.hpp"
#include "sparse/blocked_csr.hpp"
#include "sparse/csc.hpp"

namespace rsketch {

/// Compute Â = S·A into `a_hat` (resized to cfg.d × A.cols()).
///
/// Dispatches on cfg.kernel:
///  - KernelVariant::Kji runs Algorithm 3 directly on the CSC input;
///  - KernelVariant::Jki builds the blocked-CSR auxiliary structure (timed
///    into stats.convert_seconds) and runs Algorithm 4.
/// The UniformScaled distribution's global 2^-31 factor and the optional
/// isometry normalization are folded into a single post-scale of Â.
template <typename T>
SketchStats sketch_into(const SketchConfig& cfg, const CscMatrix<T>& a,
                        DenseMatrix<T>& a_hat, bool instrument = false);

/// Convenience wrapper returning the sketch by value.
template <typename T>
DenseMatrix<T> sketch(const SketchConfig& cfg, const CscMatrix<T>& a);

/// Run Algorithm 4 against a caller-prebuilt blocked CSR (skips conversion;
/// used when the same A is sketched repeatedly). Post-scaling as above.
template <typename T>
SketchStats sketch_into_prepartitioned(const SketchConfig& cfg,
                                       const BlockedCsr<T>& ab,
                                       DenseMatrix<T>& a_hat,
                                       bool instrument = false);

/// The deterministic scale applied to Â after the kernel runs (2^-31 for the
/// scaling trick, 1/sqrt(d·E[s²]) when cfg.normalize, their product if both).
template <typename T>
T sketch_post_scale(const SketchConfig& cfg);

/// Estimated workspace bytes sketch_into(cfg, a) allocates beyond the input
/// and the output: the per-thread regenerated-column scratch (team size ×
/// cfg.block_d, unclamped, as the kernels allocate it), plus the blocked-CSR
/// conversion structure when cfg.kernel is Jki. This is what the budget
/// degradation ladder compares against RunControl::remaining_bytes() and
/// what the jki path pre-charges for the conversion (support/run_control.hpp;
/// docs/ROBUSTNESS.md).
template <typename T>
std::size_t sketch_workspace_estimate(const SketchConfig& cfg, index_t rows,
                                      index_t cols, index_t nnz);

/// Materialize S explicitly as a d×m dense matrix, block-row by block-row
/// with the same (seed, b_d) checkpoints the kernels use — so
/// sketch(cfg, A) == materialize_S(cfg, m) * A exactly. Memory: d·m values;
/// intended for tests and the pre-generated baseline.
template <typename T>
DenseMatrix<T> materialize_S(const SketchConfig& cfg, index_t m);

}  // namespace rsketch
