// Portable-scalar micro-kernel tier. CMake compiles this TU at the baseline
// architecture (overriding any -march=native) with -ffp-contract=off, so the
// emitted arithmetic is plain mul + add at the narrowest width — the bitwise
// reference every wider tier must reproduce.
#define RSKETCH_SIMD_NS scalar_impl
#include "sketch/kernel_simd_impl.hpp"
