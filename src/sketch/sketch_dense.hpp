// Sketch application to DENSE operands: Y = S·X for dense X ∈ R^{m×k},
// with the same virtual S (never materialized) and checkpoint contract as
// the sparse kernels. Needed when the object being sketched is already
// dense — e.g. the right-hand side b of a least-squares problem (Ŝb in
// sketch-and-solve), or the dense factors inside randomized SVD.
#pragma once

#include <vector>

#include "dense/dense_matrix.hpp"
#include "sketch/config.hpp"

namespace rsketch {

/// Y := S·X (Y is d×k, resized by the callee). Every column of S is
/// regenerated once per row block and reused across X's k columns — the
/// dense analogue of Algorithm 4's reuse. Parallelizes over d-blocks.
template <typename T>
SketchStats sketch_dense_into(const SketchConfig& cfg, const DenseMatrix<T>& x,
                              DenseMatrix<T>& y);

/// Convenience: y = S·x for a single vector (length m → length d).
template <typename T>
std::vector<T> sketch_dense_vector(const SketchConfig& cfg, const T* x,
                                   index_t m);

extern template SketchStats sketch_dense_into<float>(const SketchConfig&,
                                                     const DenseMatrix<float>&,
                                                     DenseMatrix<float>&);
extern template SketchStats sketch_dense_into<double>(
    const SketchConfig&, const DenseMatrix<double>&, DenseMatrix<double>&);
extern template std::vector<float> sketch_dense_vector<float>(
    const SketchConfig&, const float*, index_t);
extern template std::vector<double> sketch_dense_vector<double>(
    const SketchConfig&, const double*, index_t);

}  // namespace rsketch
