#include "sketch/sketch_dense.hpp"

#include <omp.h>

#include <algorithm>
#include <vector>

#include "dense/blas1.hpp"
#include "perf/perf.hpp"
#include "sketch/sketch.hpp"
#include "sparse/validate.hpp"
#include "support/aligned_buffer.hpp"
#include "support/timer.hpp"

namespace rsketch {

namespace {

/// check_inputs scan for the dense path: a NaN/Inf in X is reported through
/// the same validation_error channel as the sparse validators, with a
/// column-attributed report instead of a bare message.
template <typename T>
void require_finite_dense(const DenseMatrix<T>& x) {
  ValidationReport report;
  report.structure = "dense";
  report.rows = x.rows();
  report.cols = x.cols();
  report.nnz = x.rows() * x.cols();
  for (index_t j = 0; j < x.cols(); ++j) {
    const index_t bad = count_non_finite(x.col(j), x.rows());
    if (bad == 0) continue;
    if (report.findings_total == 0) {
      report.findings.push_back(
          {ValidationIssue::NonFiniteValue, j,
           "column " + std::to_string(j) + " contains " +
               std::to_string(bad) + " non-finite value(s)"});
    }
    report.findings_total += bad;
    report.non_finite_values += bad;
  }
  if (!report.ok()) throw validation_error(std::move(report));
}

}  // namespace

template <typename T>
SketchStats sketch_dense_into(const SketchConfig& cfg, const DenseMatrix<T>& x,
                              DenseMatrix<T>& y) {
  cfg.validate(x.rows(), x.cols());
  if (cfg.check_inputs) {
    perf::Span span("validate_inputs");
    require_finite_dense(x);
  }
  const index_t m = x.rows();
  const index_t k = x.cols();
  const index_t d = cfg.d;
  if (y.rows() != d || y.cols() != k) {
    y.reset(d, k);
  } else {
    y.set_zero();
  }
  const index_t bd = std::min(cfg.block_d, std::max<index_t>(d, 1));
  const index_t n_iblocks = d == 0 ? 0 : ceil_div(d, bd);

  const int nthreads =
      cfg.parallel == ParallelOver::Sequential ? 1 : omp_get_max_threads();
  std::vector<std::uint64_t> samples(static_cast<std::size_t>(nthreads), 0);

  Timer timer;
#pragma omp parallel num_threads(nthreads) if (nthreads > 1)
  {
    SketchSampler<T> sampler(cfg.seed, cfg.dist, cfg.backend);
    AlignedBuffer<T> v(bd);
#pragma omp for schedule(static)
    for (index_t ib = 0; ib < n_iblocks; ++ib) {
      const index_t i0 = ib * bd;
      const index_t d1 = std::min(bd, d - i0);
      for (index_t j = 0; j < m; ++j) {
        // v := S[i0 : i0+d1, j], reused across all k columns of X (dense X
        // has no empty rows to skip).
        sampler.fill(i0, j, v.data(), d1);
        for (index_t c = 0; c < k; ++c) {
          axpy(d1, x(j, c), v.data(), y.col(c) + i0);
        }
      }
    }
    samples[static_cast<std::size_t>(omp_get_thread_num())] =
        sampler.samples_generated();
  }

  SketchStats stats;
  stats.total_seconds = timer.seconds();
  for (std::uint64_t s : samples) stats.samples_generated += s;
  const double flops = 2.0 * static_cast<double>(d) * m * k;
  stats.gflops =
      stats.total_seconds > 0 ? flops / stats.total_seconds / 1e9 : 0.0;

  const T scale = sketch_post_scale<T>(cfg);
  if (scale != T{1}) {
    for (index_t c = 0; c < k; ++c) scal(d, scale, y.col(c));
  }
  return stats;
}

template <typename T>
std::vector<T> sketch_dense_vector(const SketchConfig& cfg, const T* x,
                                   index_t m) {
  DenseMatrix<T> xm(m, 1);
  for (index_t i = 0; i < m; ++i) xm(i, 0) = x[i];
  DenseMatrix<T> y;
  sketch_dense_into(cfg, xm, y);
  std::vector<T> out(static_cast<std::size_t>(cfg.d));
  for (index_t i = 0; i < cfg.d; ++i) out[static_cast<std::size_t>(i)] = y(i, 0);
  return out;
}

template SketchStats sketch_dense_into<float>(const SketchConfig&,
                                              const DenseMatrix<float>&,
                                              DenseMatrix<float>&);
template SketchStats sketch_dense_into<double>(const SketchConfig&,
                                               const DenseMatrix<double>&,
                                               DenseMatrix<double>&);
template std::vector<float> sketch_dense_vector<float>(const SketchConfig&,
                                                       const float*, index_t);
template std::vector<double> sketch_dense_vector<double>(const SketchConfig&,
                                                         const double*,
                                                         index_t);

}  // namespace rsketch
