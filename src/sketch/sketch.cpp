#include "sketch/sketch.hpp"

#include <omp.h>

#include <algorithm>
#include <cmath>

#include "dense/blas1.hpp"
#include "perf/perf.hpp"
#include "support/aligned_buffer.hpp"
#include "support/arena.hpp"
#include "sketch/outer_blocking.hpp"
#include "sketch/tuner.hpp"
#include "sparse/validate.hpp"
#include "support/run_control.hpp"
#include "support/timer.hpp"

namespace rsketch {

std::string to_string(KernelVariant k) {
  switch (k) {
    case KernelVariant::Kji: return "kji (Alg 3)";
    case KernelVariant::Jki: return "jki (Alg 4)";
  }
  return "?";
}

std::string to_string(ParallelOver p) {
  switch (p) {
    case ParallelOver::Sequential: return "sequential";
    case ParallelOver::DBlocks: return "parallel-d";
    case ParallelOver::NBlocks: return "parallel-n";
  }
  return "?";
}

std::string to_string(TuneMode t) {
  switch (t) {
    case TuneMode::Off: return "off";
    case TuneMode::Model: return "model";
    case TuneMode::Empirical: return "empirical";
    case TuneMode::Cached: return "cached";
  }
  return "?";
}

std::string to_string(OnPressure p) {
  switch (p) {
    case OnPressure::Fail: return "fail";
    case OnPressure::Degrade: return "degrade";
  }
  return "?";
}

std::string to_string(ScheduleMode s) {
  switch (s) {
    case ScheduleMode::Auto: return "auto";
    case ScheduleMode::Uniform: return "uniform";
    case ScheduleMode::Balanced: return "balanced";
  }
  return "?";
}

template <typename T>
T sketch_post_scale(const SketchConfig& cfg) {
  double s = 1.0;
  if (cfg.dist == Dist::UniformScaled) s *= kScalingTrickFactor;
  if (cfg.normalize) {
    // After the trick's factor, entries are effectively uniform(-1,1), whose
    // second moment is 1/3 — not the raw int32 moment.
    const double m2 = cfg.dist == Dist::UniformScaled
                          ? 1.0 / 3.0
                          : static_cast<double>(dist_second_moment<T>(cfg.dist));
    s /= std::sqrt(static_cast<double>(cfg.d) * m2);
  }
  return static_cast<T>(s);
}

/// Bytes of the blocked-CSR auxiliary structure for an m×n, nnz-nonzero
/// matrix split into vertical blocks of width bn: values + column indices
/// per nonzero, plus one (m+1)-long row-pointer array per block.
std::size_t jki_convert_bytes(index_t rows, index_t cols, index_t block_n,
                              index_t nnz, std::size_t elem_bytes) {
  if (cols <= 0) return 0;
  const index_t bn = std::min(block_n, std::max<index_t>(cols, 1));
  const auto nblocks = static_cast<std::size_t>(ceil_div(cols, bn));
  return static_cast<std::size_t>(nnz) * (elem_bytes + sizeof(index_t)) +
         nblocks * (static_cast<std::size_t>(rows) + 1) * sizeof(index_t);
}

template <typename T>
std::size_t sketch_workspace_estimate(const SketchConfig& cfg, index_t rows,
                                      index_t cols, index_t nnz) {
  const int nthreads =
      cfg.parallel == ParallelOver::Sequential ? 1 : omp_get_max_threads();
  // Per-thread regenerated-column scratch, sized exactly as ThreadCtx does
  // (cfg.block_d unclamped) and rounded up as AlignedBuffer charges it.
  std::size_t per_thread =
      static_cast<std::size_t>(std::max<index_t>(cfg.block_d, 1)) * sizeof(T);
  per_thread = (per_thread + kCacheLineBytes - 1) / kCacheLineBytes *
               kCacheLineBytes;
  std::size_t total = static_cast<std::size_t>(nthreads) * per_thread;
  if (cfg.kernel == KernelVariant::Jki) {
    total += jki_convert_bytes(rows, cols, cfg.block_n, nnz, sizeof(T));
  }
  return total;
}

namespace {

template <typename T>
void apply_post_scale(const SketchConfig& cfg, DenseMatrix<T>& a_hat) {
  const T s = sketch_post_scale<T>(cfg);
  if (s == T{1}) return;
  for (index_t j = 0; j < a_hat.cols(); ++j) scal(a_hat.rows(), s, a_hat.col(j));
}

/// Kernel dispatch shared by the unarmed fast path and the staged
/// run-controlled path. `out` must already be d × n.
template <typename T>
SketchStats sketch_dispatch(const SketchConfig& cfg, const CscMatrix<T>& a,
                            DenseMatrix<T>& out, bool instrument,
                            RunControl* run) {
  if (cfg.kernel == KernelVariant::Kji) {
    return sketch_blocked_kji(cfg, a, out, instrument, run);
  }
  Timer convert;
  // The blocked-CSR structure is std::vector-backed, so the AlignedBuffer
  // budget hook never sees it — reserve its size estimate explicitly for as
  // long as it lives.
  ScopedCharge conversion_charge(
      run, run != nullptr && run->budget_armed()
               ? jki_convert_bytes(a.rows(), a.cols(), cfg.block_n, a.nnz(),
                                   sizeof(T))
               : 0);
  const BlockedCsr<T> ab = [&] {
    perf::Span span("blocked_csr_convert");
    return cfg.parallel == ParallelOver::Sequential
               ? BlockedCsr<T>::from_csc(a, cfg.block_n)
               : BlockedCsr<T>::from_csc_parallel(a, cfg.block_n);
  }();
  const double convert_seconds = convert.seconds();
  SketchStats stats = sketch_blocked_jki(cfg, ab, out, instrument, run);
  stats.convert_seconds = convert_seconds;
  return stats;
}

/// Walk the degradation ladder until the workspace estimate fits the
/// remaining budget, mutating `eff` in place. Every rung preserves Â
/// bitwise: the kernels accumulate each output entry in ascending row order
/// of A with (seed, b_d)-checkpointed columns of S, so thread count, b_n,
/// and the kji/jki choice never change a bit; b_d does for the xoshiro
/// backends (their sample streams are blocking-dependent by design), so the
/// b_d rung is gated to Philox. Returns the number of steps taken; throws
/// run_stopped_error(BudgetExceeded) under OnPressure::Fail or when the
/// ladder runs out.
template <typename T>
std::uint64_t apply_budget_ladder(SketchConfig& eff, const CscMatrix<T>& a,
                                  RunControl& run) {
  if (!run.budget_armed()) return 0;
  const auto estimate = [&] {
    return sketch_workspace_estimate<T>(eff, a.rows(), a.cols(), a.nnz());
  };
  if (estimate() <= run.remaining_bytes()) return 0;
  if (eff.on_pressure == OnPressure::Fail) {
    perf::add(perf::Counter::RunBudgetHits, 1);
    throw run_stopped_error(
        StopCause::BudgetExceeded,
        "sketch_into: workspace estimate of " + std::to_string(estimate()) +
            " bytes exceeds the remaining budget of " +
            std::to_string(run.remaining_bytes()) +
            " bytes (on_pressure=fail)");
  }
  std::uint64_t steps = 0;
  const auto step = [&](const char* rung) {
    ++steps;
    perf::add(perf::Counter::RunDegradations, 1);
    perf::add_span("run_control/degrade", 0.0);
    perf::add_span(std::string("run_control/degrade/") + rung, 0.0);
  };
  while (estimate() > run.remaining_bytes()) {
    if (eff.parallel != ParallelOver::Sequential) {
      // R1: drop the thread team — scratch shrinks by ~nthreads×.
      eff.parallel = ParallelOver::Sequential;
      step("sequential");
    } else if (eff.kernel == KernelVariant::Jki &&
               eff.block_n < std::max<index_t>(a.cols(), 1)) {
      // R2: one vertical slab — fewest row-pointer arrays the conversion
      // can carry.
      eff.block_n = std::max<index_t>(a.cols(), 1);
      step("widen_block_n");
    } else if (eff.kernel == KernelVariant::Jki) {
      // R3: Algorithm 3 needs no auxiliary structure at all.
      eff.kernel = KernelVariant::Kji;
      step("kernel_kji");
    } else if (eff.backend == RngBackend::Philox && eff.block_d > 1) {
      // R4 (Philox only — blocking-independent stream): shrink the
      // regenerated-column scratch itself.
      eff.block_d = (eff.block_d + 1) / 2;
      step("halve_block_d");
    } else {
      perf::add(perf::Counter::RunBudgetHits, 1);
      throw run_stopped_error(
          StopCause::BudgetExceeded,
          "sketch_into: degradation ladder exhausted after " +
              std::to_string(steps) + " step(s); minimum workspace of " +
              std::to_string(estimate()) +
              " bytes still exceeds the remaining budget of " +
              std::to_string(run.remaining_bytes()) + " bytes");
    }
  }
  return steps;
}

}  // namespace

template <typename T>
SketchStats sketch_into(const SketchConfig& cfg, const CscMatrix<T>& a,
                        DenseMatrix<T>& a_hat, bool instrument) {
  if (cfg.tune != TuneMode::Off) {
    // Resolve (kernel, blocks, backend) through the tuner, then dispatch the
    // effective config — which carries tune == Off, so this recurses once.
    const SketchConfig effective = resolve_tuning(cfg, a);
    return sketch_into(effective, a, a_hat, instrument);
  }
  cfg.validate(a.rows(), a.cols());
  if (cfg.check_inputs) {
    perf::Span span("validate_inputs");
    require_valid(a);
  }

  ResolvedRunControl rrc(cfg.control, cfg.deadline_ms,
                         cfg.workspace_budget_bytes);
  RunControl* const run = rrc.get();
  if (run == nullptr) {
    // Unarmed fast path: identical to the uncontrolled library since the
    // beginning — no staging copy, no polling, no charges.
    if (a_hat.rows() != cfg.d || a_hat.cols() != a.cols()) {
      a_hat.reset(cfg.d, a.cols());
    }
    SketchStats stats;
    {
      // Arena scope covers ONLY the kernel dispatch: the output was sized
      // above, outside it, because it escapes to the caller and must not be
      // arena-backed. The scope is thread-local, so OMP workers spawned
      // inside still allocate off the plain heap.
      ScopedArenaScope arena(cfg.arena);
      stats = sketch_dispatch(cfg, a, a_hat, instrument, nullptr);
    }
    apply_post_scale(cfg, a_hat);
    return stats;
  }

  run->poll();
  SketchConfig eff = cfg;
  const std::uint64_t degradations = apply_budget_ladder(eff, a, *run);

  // Clean-throw staging: the output buffer is allocated before the budget
  // scope installs (the budget bounds workspace, not the result) and is
  // moved over a_hat only once the whole sketch succeeded, so a stopped run
  // leaves a_hat exactly as the caller passed it. It is likewise allocated
  // before the arena scope — it outlives any batch arena.
  DenseMatrix<T> staging(cfg.d, a.cols());
  SketchStats stats;
  {
    ScopedBudgetScope scope(run);
    ScopedArenaScope arena(cfg.arena);
    stats = sketch_dispatch(eff, a, staging, instrument, run);
  }
  apply_post_scale(eff, staging);
  run->poll();
  a_hat = std::move(staging);
  stats.degradations = degradations;
  return stats;
}

template <typename T>
DenseMatrix<T> sketch(const SketchConfig& cfg, const CscMatrix<T>& a) {
  DenseMatrix<T> a_hat(cfg.d, a.cols());
  sketch_into(cfg, a, a_hat);
  return a_hat;
}

template <typename T>
SketchStats sketch_into_prepartitioned(const SketchConfig& cfg,
                                       const BlockedCsr<T>& ab,
                                       DenseMatrix<T>& a_hat,
                                       bool instrument) {
  if (cfg.check_inputs) {
    perf::Span span("validate_inputs");
    require_valid(ab);
  }
  ResolvedRunControl rrc(cfg.control, cfg.deadline_ms,
                         cfg.workspace_budget_bytes);
  RunControl* const run = rrc.get();
  if (run == nullptr) {
    if (a_hat.rows() != cfg.d || a_hat.cols() != ab.cols()) {
      a_hat.reset(cfg.d, ab.cols());
    }
    SketchStats stats;
    {
      ScopedArenaScope arena(cfg.arena);
      stats = sketch_blocked_jki(cfg, ab, a_hat, instrument);
    }
    apply_post_scale(cfg, a_hat);
    return stats;
  }
  // The caller already owns the partitioned structure, so there is nothing
  // for the ladder to shed here — cancellation/deadline polling and the
  // per-thread scratch budget still apply, with the same staged clean-throw
  // as sketch_into().
  run->poll();
  DenseMatrix<T> staging(cfg.d, ab.cols());
  SketchStats stats;
  {
    ScopedBudgetScope scope(run);
    ScopedArenaScope arena(cfg.arena);
    stats = sketch_blocked_jki(cfg, ab, staging, instrument, run);
  }
  apply_post_scale(cfg, staging);
  run->poll();
  a_hat = std::move(staging);
  return stats;
}

template <typename T>
DenseMatrix<T> materialize_S(const SketchConfig& cfg, index_t m) {
  DenseMatrix<T> s(cfg.d, m);
  const index_t d = cfg.d;
  // Reproduce the kernels' effective block size clamping so the checkpoint
  // coordinates (i0, j) match exactly.
  const index_t bd = std::min(cfg.block_d, std::max<index_t>(d, 1));
  SketchSampler<T> sampler(cfg.seed, cfg.dist, cfg.backend);
  std::vector<T> v(static_cast<std::size_t>(bd));
  for (index_t j = 0; j < m; ++j) {
    for (index_t i0 = 0; i0 < d; i0 += bd) {
      const index_t d1 = std::min(bd, d - i0);
      sampler.fill(i0, j, v.data(), d1);
      for (index_t i = 0; i < d1; ++i) s(i0 + i, j) = v[static_cast<std::size_t>(i)];
    }
  }
  const T scale = sketch_post_scale<T>(cfg);
  if (scale != T{1}) {
    for (index_t j = 0; j < m; ++j) scal(s.rows(), scale, s.col(j));
  }
  return s;
}

#define RSKETCH_INSTANTIATE(T)                                               \
  template T sketch_post_scale<T>(const SketchConfig&);                      \
  template std::size_t sketch_workspace_estimate<T>(const SketchConfig&,     \
                                                    index_t, index_t,        \
                                                    index_t);                \
  template SketchStats sketch_into<T>(const SketchConfig&,                   \
                                      const CscMatrix<T>&, DenseMatrix<T>&,  \
                                      bool);                                 \
  template DenseMatrix<T> sketch<T>(const SketchConfig&,                     \
                                    const CscMatrix<T>&);                    \
  template SketchStats sketch_into_prepartitioned<T>(                        \
      const SketchConfig&, const BlockedCsr<T>&, DenseMatrix<T>&, bool);     \
  template DenseMatrix<T> materialize_S<T>(const SketchConfig&, index_t);

RSKETCH_INSTANTIATE(float)
RSKETCH_INSTANTIATE(double)
#undef RSKETCH_INSTANTIATE

}  // namespace rsketch
