#include "sketch/sketch.hpp"

#include <algorithm>
#include <cmath>

#include "dense/blas1.hpp"
#include "perf/perf.hpp"
#include "sketch/outer_blocking.hpp"
#include "sketch/tuner.hpp"
#include "sparse/validate.hpp"
#include "support/timer.hpp"

namespace rsketch {

std::string to_string(KernelVariant k) {
  switch (k) {
    case KernelVariant::Kji: return "kji (Alg 3)";
    case KernelVariant::Jki: return "jki (Alg 4)";
  }
  return "?";
}

std::string to_string(ParallelOver p) {
  switch (p) {
    case ParallelOver::Sequential: return "sequential";
    case ParallelOver::DBlocks: return "parallel-d";
    case ParallelOver::NBlocks: return "parallel-n";
  }
  return "?";
}

std::string to_string(TuneMode t) {
  switch (t) {
    case TuneMode::Off: return "off";
    case TuneMode::Model: return "model";
    case TuneMode::Empirical: return "empirical";
    case TuneMode::Cached: return "cached";
  }
  return "?";
}

template <typename T>
T sketch_post_scale(const SketchConfig& cfg) {
  double s = 1.0;
  if (cfg.dist == Dist::UniformScaled) s *= kScalingTrickFactor;
  if (cfg.normalize) {
    // After the trick's factor, entries are effectively uniform(-1,1), whose
    // second moment is 1/3 — not the raw int32 moment.
    const double m2 = cfg.dist == Dist::UniformScaled
                          ? 1.0 / 3.0
                          : static_cast<double>(dist_second_moment<T>(cfg.dist));
    s /= std::sqrt(static_cast<double>(cfg.d) * m2);
  }
  return static_cast<T>(s);
}

namespace {

template <typename T>
void apply_post_scale(const SketchConfig& cfg, DenseMatrix<T>& a_hat) {
  const T s = sketch_post_scale<T>(cfg);
  if (s == T{1}) return;
  for (index_t j = 0; j < a_hat.cols(); ++j) scal(a_hat.rows(), s, a_hat.col(j));
}

}  // namespace

template <typename T>
SketchStats sketch_into(const SketchConfig& cfg, const CscMatrix<T>& a,
                        DenseMatrix<T>& a_hat, bool instrument) {
  if (cfg.tune != TuneMode::Off) {
    // Resolve (kernel, blocks, backend) through the tuner, then dispatch the
    // effective config — which carries tune == Off, so this recurses once.
    const SketchConfig effective = resolve_tuning(cfg, a);
    return sketch_into(effective, a, a_hat, instrument);
  }
  cfg.validate(a.rows(), a.cols());
  if (cfg.check_inputs) {
    perf::Span span("validate_inputs");
    require_valid(a);
  }
  if (a_hat.rows() != cfg.d || a_hat.cols() != a.cols()) {
    a_hat.reset(cfg.d, a.cols());
  }
  SketchStats stats;
  if (cfg.kernel == KernelVariant::Kji) {
    stats = sketch_blocked_kji(cfg, a, a_hat, instrument);
  } else {
    Timer convert;
    const BlockedCsr<T> ab = [&] {
      perf::Span span("blocked_csr_convert");
      return cfg.parallel == ParallelOver::Sequential
                 ? BlockedCsr<T>::from_csc(a, cfg.block_n)
                 : BlockedCsr<T>::from_csc_parallel(a, cfg.block_n);
    }();
    const double convert_seconds = convert.seconds();
    stats = sketch_blocked_jki(cfg, ab, a_hat, instrument);
    stats.convert_seconds = convert_seconds;
  }
  apply_post_scale(cfg, a_hat);
  return stats;
}

template <typename T>
DenseMatrix<T> sketch(const SketchConfig& cfg, const CscMatrix<T>& a) {
  DenseMatrix<T> a_hat(cfg.d, a.cols());
  sketch_into(cfg, a, a_hat);
  return a_hat;
}

template <typename T>
SketchStats sketch_into_prepartitioned(const SketchConfig& cfg,
                                       const BlockedCsr<T>& ab,
                                       DenseMatrix<T>& a_hat,
                                       bool instrument) {
  if (cfg.check_inputs) {
    perf::Span span("validate_inputs");
    require_valid(ab);
  }
  if (a_hat.rows() != cfg.d || a_hat.cols() != ab.cols()) {
    a_hat.reset(cfg.d, ab.cols());
  }
  SketchStats stats = sketch_blocked_jki(cfg, ab, a_hat, instrument);
  apply_post_scale(cfg, a_hat);
  return stats;
}

template <typename T>
DenseMatrix<T> materialize_S(const SketchConfig& cfg, index_t m) {
  DenseMatrix<T> s(cfg.d, m);
  const index_t d = cfg.d;
  // Reproduce the kernels' effective block size clamping so the checkpoint
  // coordinates (i0, j) match exactly.
  const index_t bd = std::min(cfg.block_d, std::max<index_t>(d, 1));
  SketchSampler<T> sampler(cfg.seed, cfg.dist, cfg.backend);
  std::vector<T> v(static_cast<std::size_t>(bd));
  for (index_t j = 0; j < m; ++j) {
    for (index_t i0 = 0; i0 < d; i0 += bd) {
      const index_t d1 = std::min(bd, d - i0);
      sampler.fill(i0, j, v.data(), d1);
      for (index_t i = 0; i < d1; ++i) s(i0 + i, j) = v[static_cast<std::size_t>(i)];
    }
  }
  const T scale = sketch_post_scale<T>(cfg);
  if (scale != T{1}) {
    for (index_t j = 0; j < m; ++j) scal(s.rows(), scale, s.col(j));
  }
  return s;
}

#define RSKETCH_INSTANTIATE(T)                                               \
  template T sketch_post_scale<T>(const SketchConfig&);                      \
  template SketchStats sketch_into<T>(const SketchConfig&,                   \
                                      const CscMatrix<T>&, DenseMatrix<T>&,  \
                                      bool);                                 \
  template DenseMatrix<T> sketch<T>(const SketchConfig&,                     \
                                    const CscMatrix<T>&);                    \
  template SketchStats sketch_into_prepartitioned<T>(                        \
      const SketchConfig&, const BlockedCsr<T>&, DenseMatrix<T>&, bool);     \
  template DenseMatrix<T> materialize_S<T>(const SketchConfig&, index_t);

RSKETCH_INSTANTIATE(float)
RSKETCH_INSTANTIATE(double)
#undef RSKETCH_INSTANTIATE

}  // namespace rsketch
