// Empirical autotuner with a persistent tuning cache (docs/AUTOTUNING.md).
//
// The §III-A model behind suggest_blocks() is open-loop: it predicts a good
// (b_d, b_n) but never checks the prediction against this machine and this
// sparsity pattern. The tuner closes the loop: it seeds a candidate set from
// the model (± neighbors in b_d/b_n, both kernel variants, xoshiro vs.
// philox backends), times each candidate on a small pilot sub-sketch, and
// dispatches the winner. Winners persist in a JSON cache keyed by
// (machine signature, matrix fingerprint) so repeated runs skip re-timing
// entirely — a cache hit is O(1) plus one O(nnz) fingerprint pass.
//
// Every decision is observable: tuner/* perf spans plus the
// tuner_cache_hits / tuner_cache_misses / tuner_candidates_timed counters.
#pragma once

#include <string>
#include <vector>

#include "sketch/config.hpp"
#include "sparse/csc.hpp"

namespace rsketch {

/// One dispatch candidate the tuner considers.
struct TuneCandidate {
  KernelVariant kernel = KernelVariant::Kji;
  RngBackend backend = RngBackend::XoshiroBatch;
  index_t block_d = 1;
  index_t block_n = 1;
  /// Micro-kernel ISA tier (dense/microkernel.hpp). Auto — the default and
  /// what old cache entries decode to — means "resolve at dispatch", so the
  /// tuner only pins a tier when a non-default one actually won a pilot.
  microkernel::Isa isa = microkernel::Isa::Auto;
  /// Block-to-thread schedule (sketch/schedule.hpp), same contract as `isa`:
  /// Auto resolves at dispatch, old cache entries decode to Auto, and a mode
  /// is only pinned when it actually won a pilot.
  ScheduleMode schedule = ScheduleMode::Auto;

  /// Compact stable label: "kji/xoshiro_batch/3000x500/auto/auto"
  /// (kernel/backend/blocks/isa/schedule; cache + logs).
  std::string label() const;
};

/// Where the dispatched configuration came from.
enum class TuneSource {
  Caller,     ///< tuning off or not applicable; cfg used verbatim
  Model,      ///< suggest_blocks() prediction
  Empirical,  ///< pilot-timed winner
  Cache       ///< persisted winner, no re-timing
};

std::string to_string(TuneSource s);

/// The tuner's decision for one (machine, matrix, config) triple.
struct TuneDecision {
  TuneCandidate choice;
  TuneSource source = TuneSource::Caller;
  std::string key;             ///< cache key the decision maps to ("" if n/a)
  double pilot_seconds = 0.0;  ///< winner's best pilot time (empirical only)
  int candidates_timed = 0;    ///< pilot runs performed (0 on cache hit)
};

/// Parse "off" | "model" | "empirical" | "cached" (sketch_tool --tune).
/// Throws invalid_argument_error on anything else.
TuneMode parse_tune_mode(const std::string& s);

/// Bucketized fingerprint of a sketching problem: exact (m, n), log2 bucket
/// of d, log10 bucket of density, and coarse row-degree pattern stats
/// (analysis/pattern.hpp). Two problems with the same fingerprint are
/// expected to share a winning schedule.
template <typename T>
std::string matrix_fingerprint(const CscMatrix<T>& a, index_t d);

/// Candidate set for the empirical search: the model suggestion ± one
/// multiplicative neighbor in each of b_d and b_n, crossed with both kernel
/// variants under cfg.backend, plus the model blocks under the alternate
/// RNG backend family (xoshiro-batch vs. philox). Deduplicated; never empty
/// for valid inputs.
template <typename T>
std::vector<TuneCandidate> tuner_candidates(const SketchConfig& cfg,
                                            const CscMatrix<T>& a);

/// Resolve cfg against `a` under cfg.tune, returning the effective config
/// (with tune == Off so it dispatches directly). Never throws on cache
/// trouble: a corrupt or stale cache file warns once (support/env.hpp
/// machinery) and degrades to model tuning. Optionally reports how the
/// decision was reached through `decision`.
template <typename T>
SketchConfig resolve_tuning(const SketchConfig& cfg, const CscMatrix<T>& a,
                            TuneDecision* decision = nullptr);

/// Resolved location of the persistent cache: $RSKETCH_TUNE_CACHE, else
/// $XDG_CACHE_HOME/rsketch/tuning.json, else ~/.cache/rsketch/tuning.json,
/// else ./rsketch_tuning.json.
std::string tuning_cache_path();

/// In-memory image of the persistent tuning cache (schema_version 1):
///   {"schema_version": 1, "entries": {"<machine>#<fingerprint>": {
///      "kernel": "kji", "backend": "xoshiro_batch",
///      "block_d": 3000, "block_n": 500, "pilot_seconds": 1.2e-3}}}
class TuningCache {
 public:
  /// Missing file → empty cache (ok()). Unreadable/corrupt/wrong-schema
  /// file → empty cache with ok() == false, so callers can warn and avoid
  /// clobbering the file.
  static TuningCache load(const std::string& path);

  /// True when the backing file was absent or parsed cleanly.
  bool ok() const { return ok_; }

  /// Entry lookup; false when absent or structurally invalid (stale).
  bool lookup(const std::string& key, TuneCandidate* out) const;

  void store(const std::string& key, const TuneCandidate& cand,
             double pilot_seconds);

  /// Best-effort write (directories created). False on I/O failure.
  bool save(const std::string& path) const;

  std::size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    TuneCandidate cand;
    double pilot_seconds = 0.0;
  };
  std::vector<std::pair<std::string, Entry>> entries_;
  bool ok_ = true;
};

extern template std::string matrix_fingerprint<float>(const CscMatrix<float>&,
                                                      index_t);
extern template std::string matrix_fingerprint<double>(
    const CscMatrix<double>&, index_t);
extern template std::vector<TuneCandidate> tuner_candidates<float>(
    const SketchConfig&, const CscMatrix<float>&);
extern template std::vector<TuneCandidate> tuner_candidates<double>(
    const SketchConfig&, const CscMatrix<double>&);
extern template SketchConfig resolve_tuning<float>(const SketchConfig&,
                                                   const CscMatrix<float>&,
                                                   TuneDecision*);
extern template SketchConfig resolve_tuning<double>(const SketchConfig&,
                                                    const CscMatrix<double>&,
                                                    TuneDecision*);

}  // namespace rsketch
